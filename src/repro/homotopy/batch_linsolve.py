"""Batched Gaussian elimination directly on packed limb tensors.

Scalar :func:`repro.homotopy.lu_solve` eliminates one
:class:`repro.series.PowerSeries` operation at a time — after PR 5 moved the
evaluation sweeps onto the tensorized NumPy backend, that Python-level solve
became the dominant cost of a batched Newton step.  This module applies the
same whole-array multidouble strategy to the solve itself: the matrices and
right-hand sides of *all* batch instances live in one
``(limbs, batch, n, n, degree+1)`` limb tensor (split real/imaginary planes
for complex rings, the :mod:`repro.md.cvecops` layout), and every elimination
step runs as a handful of batched series convolutions
(:func:`repro.core.tensor.convolve_rows` /
:func:`repro.core.tensor.convolve_rows_complex`) and whole-array
multiple-double sweeps — never a per-instance Python loop over ring
operations.

The algorithm mirrors the scalar one operation for operation:

* per-instance partial pivoting by constant-term magnitude, selected with one
  ``np.argmax`` per column (first maximum wins, like Python's ``max``);
* pivot series inverted once per column via the standard recursion
  (``b_0 = 1/a_0``, ``b_k = -(1/a_0) * sum a_i b_{k-i}``) on whole batch
  rows, with the reciprocal from :func:`repro.md.vecops.md_reciprocal_rows` /
  :func:`repro.md.cvecops.cmd_reciprocal_rows`; the inverses are cached and
  reused by back substitution (the scalar solver does the same);
* row updates and back substitution accumulate in exactly the scalar
  operand order, so for multiple-double rings at **double-double** precision
  the results are bit-identical to per-instance :func:`lu_solve` — the parity
  the test suite asserts limb by limb.  Higher precisions and one-limb rings
  agree to rounding (the vectorised renormalisation is faithful, not
  bit-reproducing, beyond two limbs; plain-complex division uses the naive
  formula where Python uses Smith's algorithm).  Complex pivot *selection*
  compares ``|z|`` computed from collapsed doubles, which can deviate from
  the scalar multidouble ``sqrt`` magnitude only when two candidate pivots
  tie within one double ulp.

A singular instance raises :class:`repro.errors.SingularSystemError` naming
every failing batch position (``exc.instances``); a non-square input is a
usage error and raises :class:`ValueError`, exactly like the scalar solver.
"""

from __future__ import annotations

from time import perf_counter_ns as _perf_counter_ns
from typing import Sequence

import numpy as np

from ..core.tensor import (
    ComplexSlotTensor,
    SlotTensor,
    collapse_limbs,
    convolve_rows,
    convolve_rows_complex,
    infer_ring,
    make_tensor,
)
from ..errors import SingularSystemError
from ..md.cvecops import cmd_add_rows, cmd_mul_rows, cmd_reciprocal_rows, cmd_sub_rows
from ..md.vecops import md_add_rows, md_mul_rows, md_reciprocal_rows, md_sub_rows
from ..obs import get_telemetry
from ..series.series import PowerSeries
from .linsolve import lu_solve

__all__ = [
    "batch_lu_solve",
    "batch_lu_solve_tensor",
    "batch_lu_solve_tensor_complex",
    "series_inverse_rows",
    "series_inverse_rows_complex",
    "solve_packed",
]

#: Process-wide telemetry registry; ``enabled`` is a plain attribute so the
#: disabled hot path costs exactly one attribute check per call site.
_TELEMETRY = get_telemetry()

#: Memoised ``TimingModel.predict_solve`` wall-clock estimates, keyed on
#: ``(dimension, degree, batch, limbs)`` — solves recur at identical shapes
#: throughout a Newton run, so each shape is priced once.
_SOLVE_PREDICTIONS: dict[tuple, float | None] = {}


def _predicted_solve_ms(
    dimension: int, degree: int, batch: int, limbs: int
) -> float | None:
    key = (dimension, degree, batch, limbs)
    if key not in _SOLVE_PREDICTIONS:
        if len(_SOLVE_PREDICTIONS) > 4096:
            _SOLVE_PREDICTIONS.clear()
        try:
            from ..gpusim.timing import TimingModel

            model = TimingModel(precision=limbs)
            _SOLVE_PREDICTIONS[key] = model.predict_solve(
                dimension, degree, batch
            ).wall_clock_ms
        except Exception:
            _SOLVE_PREDICTIONS[key] = None
    return _SOLVE_PREDICTIONS[key]


# --------------------------------------------------------------------- #
# batched series inversion
# --------------------------------------------------------------------- #
def series_inverse_rows(c: np.ndarray, limbs: int) -> np.ndarray:
    """Invert many real power series at once.

    ``c`` is a ``(limbs, m, degree+1)`` limb tensor of series with invertible
    constant terms; the result holds ``1 / c`` row by row, computed with the
    recursion of :meth:`repro.series.PowerSeries.inverse` in the exact scalar
    accumulation order.
    """
    limb_list = list(range(limbs))
    out = np.zeros_like(c)
    inv0 = md_reciprocal_rows([c[i, :, 0] for i in limb_list], limbs)
    for i in limb_list:
        out[i, :, 0] = inv0[i]
    for k in range(1, c.shape[2]):
        acc = md_mul_rows(
            [c[i, :, 1] for i in limb_list], [out[i, :, k - 1] for i in limb_list], limbs
        )
        for j in range(2, k + 1):
            term = md_mul_rows(
                [c[i, :, j] for i in limb_list],
                [out[i, :, k - j] for i in limb_list],
                limbs,
            )
            acc = md_add_rows(acc, term, limbs)
        coeff = md_mul_rows(inv0, acc, limbs)
        for i in limb_list:
            out[i, :, k] = -coeff[i]
    return out


def series_inverse_rows_complex(
    cr: np.ndarray, ci: np.ndarray, limbs: int
) -> tuple[np.ndarray, np.ndarray]:
    """Invert many complex power series at once (split real/imaginary planes)."""
    limb_list = list(range(limbs))
    out_r = np.zeros_like(cr)
    out_i = np.zeros_like(ci)
    inv0_r, inv0_i = cmd_reciprocal_rows(
        [cr[i, :, 0] for i in limb_list], [ci[i, :, 0] for i in limb_list], limbs
    )
    for i in limb_list:
        out_r[i, :, 0] = inv0_r[i]
        out_i[i, :, 0] = inv0_i[i]
    for k in range(1, cr.shape[2]):
        acc_r, acc_i = cmd_mul_rows(
            [cr[i, :, 1] for i in limb_list],
            [ci[i, :, 1] for i in limb_list],
            [out_r[i, :, k - 1] for i in limb_list],
            [out_i[i, :, k - 1] for i in limb_list],
            limbs,
        )
        for j in range(2, k + 1):
            term_r, term_i = cmd_mul_rows(
                [cr[i, :, j] for i in limb_list],
                [ci[i, :, j] for i in limb_list],
                [out_r[i, :, k - j] for i in limb_list],
                [out_i[i, :, k - j] for i in limb_list],
                limbs,
            )
            acc_r, acc_i = cmd_add_rows(acc_r, acc_i, term_r, term_i, limbs)
        coeff_r, coeff_i = cmd_mul_rows(inv0_r, inv0_i, acc_r, acc_i, limbs)
        for i in limb_list:
            out_r[i, :, k] = -coeff_r[i]
            out_i[i, :, k] = -coeff_i[i]
    return out_r, out_i


# --------------------------------------------------------------------- #
# shared elimination helpers
# --------------------------------------------------------------------- #
def _check_shapes(matrix_shape, rhs_shape) -> tuple[int, int, int, int, int]:
    if len(matrix_shape) != 5 or len(rhs_shape) != 4:
        raise ValueError(
            "expected a (limbs, batch, n, n, degree+1) matrix tensor and a "
            f"(limbs, batch, n, degree+1) rhs tensor, got {matrix_shape} and {rhs_shape}"
        )
    limbs, batch, rows, columns, width = matrix_shape
    if rows != columns:
        raise ValueError(
            f"batched lu solve expects square systems, got {rows} x {columns}"
        )
    if rhs_shape != (limbs, batch, rows, width):
        raise ValueError(
            f"rhs tensor shape {rhs_shape} does not match matrix shape {matrix_shape}"
        )
    return limbs, batch, rows, columns, width


def _check_pivots(magnitudes: np.ndarray, column: int) -> None:
    """Raise for every instance whose best pivot magnitude vanishes."""
    singular = np.nonzero(magnitudes == 0.0)[0]
    if singular.size:
        instances = [int(i) for i in singular]
        error = SingularSystemError(
            f"zero pivot in column {column} for batch instance(s) "
            + ", ".join(map(str, instances))
        )
        error.instances = instances
        raise error


def _swap_rows(a: np.ndarray, b: np.ndarray, column: int, pivot: np.ndarray) -> None:
    """Per-instance row swap ``column <-> pivot[instance]``, in place."""
    moved = np.nonzero(pivot != column)[0]
    if not moved.size:
        return
    rows = pivot[moved]
    matrix_tmp = a[:, moved, column].copy()
    rhs_tmp = b[:, moved, column].copy()
    a[:, moved, column] = a[:, moved, rows]
    b[:, moved, column] = b[:, moved, rows]
    a[:, moved, rows] = matrix_tmp
    b[:, moved, rows] = rhs_tmp


def _flat(planes: np.ndarray, limbs: int, width: int) -> np.ndarray:
    """Collapse the middle axes to one row axis for the row-op kernels."""
    return np.ascontiguousarray(planes).reshape(limbs, -1, width)


# --------------------------------------------------------------------- #
# the real batched solver
# --------------------------------------------------------------------- #
def batch_lu_solve_tensor(matrix: np.ndarray, rhs: np.ndarray, limbs: int) -> np.ndarray:
    """Solve many real series systems in one whole-tensor elimination.

    ``matrix`` is a ``(limbs, batch, n, n, degree+1)`` limb tensor (instance
    ``b``, row ``i``, column ``j``), ``rhs`` a ``(limbs, batch, n, degree+1)``
    tensor; the result has the shape of ``rhs`` and holds the per-instance
    solutions.  The inputs are not modified.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    rhs = np.ascontiguousarray(rhs, dtype=np.float64)
    _, batch, n, _, width = _check_shapes(matrix.shape, rhs.shape)
    a = matrix.copy()
    b = rhs.copy()
    limb_list = list(range(limbs))
    inverses = np.zeros((limbs, batch, n, width), dtype=np.float64)

    for column in range(n):
        # Partial pivoting on the constant coefficients, one argmax per
        # instance; |sum of limbs in reversed order| is exactly the scalar
        # abs(MultiDouble.to_float()) magnitude, ties break to the first row
        # in both stacks.
        magnitudes = np.abs(collapse_limbs(a[:, :, column:, column, 0]))
        relative = np.argmax(magnitudes, axis=1)
        _check_pivots(magnitudes[np.arange(batch), relative], column)
        _swap_rows(a, b, column, relative + column)

        inverse = series_inverse_rows(
            np.ascontiguousarray(a[:, :, column, column, :]), limbs
        )
        inverses[:, :, column, :] = inverse
        remaining = n - column - 1
        if not remaining:
            continue
        # factor[row] = a[row][column] * pivot_inverse, all rows at once
        entries = _flat(a[:, :, column + 1 :, column, :], limbs, width)
        tiled = np.broadcast_to(
            inverse[:, :, None, :], (limbs, batch, remaining, width)
        )
        factors = convolve_rows(entries, _flat(tiled, limbs, width), limbs).reshape(
            limbs, batch, remaining, width
        )
        # a[row][k] -= factor[row] * a[column][k] for every row > column and
        # every k >= column, with the rhs riding along as column n.
        span = n - column
        source = np.concatenate(
            [a[:, :, column, column:, :], b[:, :, column, None, :]], axis=2
        )
        targets = np.concatenate(
            [a[:, :, column + 1 :, column:, :], b[:, :, column + 1 :, None, :]], axis=3
        )
        shape = (limbs, batch, remaining, span + 1, width)
        products = convolve_rows(
            _flat(np.broadcast_to(factors[:, :, :, None, :], shape), limbs, width),
            _flat(np.broadcast_to(source[:, :, None, :, :], shape), limbs, width),
            limbs,
        )
        flat_targets = _flat(targets, limbs, width)
        updated = md_sub_rows(
            [flat_targets[i] for i in limb_list], [products[i] for i in limb_list], limbs
        )
        eliminated = np.stack(updated).reshape(shape)
        a[:, :, column + 1 :, column:, :] = eliminated[:, :, :, :span, :]
        b[:, :, column + 1 :, :] = eliminated[:, :, :, span, :]

    # Back substitution: the k-accumulation is sequential (scalar order), the
    # batch axis is vectorised; pivot inverses are reused from elimination.
    x = np.zeros_like(b)
    for row in range(n - 1, -1, -1):
        accumulator = np.ascontiguousarray(b[:, :, row, :])
        for k in range(row + 1, n):
            product = convolve_rows(
                np.ascontiguousarray(a[:, :, row, k, :]),
                np.ascontiguousarray(x[:, :, k, :]),
                limbs,
            )
            difference = md_sub_rows(
                [accumulator[i] for i in limb_list],
                [product[i] for i in limb_list],
                limbs,
            )
            accumulator = np.stack(difference)
        x[:, :, row, :] = convolve_rows(
            accumulator, np.ascontiguousarray(inverses[:, :, row, :]), limbs
        )
    return x


# --------------------------------------------------------------------- #
# the complex batched solver
# --------------------------------------------------------------------- #
def batch_lu_solve_tensor_complex(
    matrix_real: np.ndarray,
    matrix_imag: np.ndarray,
    rhs_real: np.ndarray,
    rhs_imag: np.ndarray,
    limbs: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve many complex series systems on paired real/imaginary planes.

    The complex twin of :func:`batch_lu_solve_tensor`: same shapes per
    plane, same elimination order, with every ring operation decomposed into
    real sweeps through :mod:`repro.md.cvecops` in the scalar
    :class:`repro.md.ComplexMD` operation order.
    """
    matrix_real = np.ascontiguousarray(matrix_real, dtype=np.float64)
    matrix_imag = np.ascontiguousarray(matrix_imag, dtype=np.float64)
    rhs_real = np.ascontiguousarray(rhs_real, dtype=np.float64)
    rhs_imag = np.ascontiguousarray(rhs_imag, dtype=np.float64)
    if matrix_real.shape != matrix_imag.shape or rhs_real.shape != rhs_imag.shape:
        raise ValueError("real and imaginary planes must share one shape")
    _, batch, n, _, width = _check_shapes(matrix_real.shape, rhs_real.shape)
    ar, ai = matrix_real.copy(), matrix_imag.copy()
    br, bi = rhs_real.copy(), rhs_imag.copy()
    limb_list = list(range(limbs))
    inv_r = np.zeros((limbs, batch, n, width), dtype=np.float64)
    inv_i = np.zeros((limbs, batch, n, width), dtype=np.float64)

    for column in range(n):
        magnitudes = np.hypot(
            collapse_limbs(ar[:, :, column:, column, 0]),
            collapse_limbs(ai[:, :, column:, column, 0]),
        )
        relative = np.argmax(magnitudes, axis=1)
        _check_pivots(magnitudes[np.arange(batch), relative], column)
        pivot = relative + column
        _swap_rows(ar, br, column, pivot)
        _swap_rows(ai, bi, column, pivot)

        pivot_inv = series_inverse_rows_complex(
            np.ascontiguousarray(ar[:, :, column, column, :]),
            np.ascontiguousarray(ai[:, :, column, column, :]),
            limbs,
        )
        inv_r[:, :, column, :], inv_i[:, :, column, :] = pivot_inv
        remaining = n - column - 1
        if not remaining:
            continue
        tile_shape = (limbs, batch, remaining, width)
        factors_r, factors_i = convolve_rows_complex(
            _flat(ar[:, :, column + 1 :, column, :], limbs, width),
            _flat(ai[:, :, column + 1 :, column, :], limbs, width),
            _flat(np.broadcast_to(pivot_inv[0][:, :, None, :], tile_shape), limbs, width),
            _flat(np.broadcast_to(pivot_inv[1][:, :, None, :], tile_shape), limbs, width),
            limbs,
        )
        factors_r = factors_r.reshape(tile_shape)
        factors_i = factors_i.reshape(tile_shape)
        span = n - column
        shape = (limbs, batch, remaining, span + 1, width)
        source_r = np.concatenate(
            [ar[:, :, column, column:, :], br[:, :, column, None, :]], axis=2
        )
        source_i = np.concatenate(
            [ai[:, :, column, column:, :], bi[:, :, column, None, :]], axis=2
        )
        targets_r = np.concatenate(
            [ar[:, :, column + 1 :, column:, :], br[:, :, column + 1 :, None, :]], axis=3
        )
        targets_i = np.concatenate(
            [ai[:, :, column + 1 :, column:, :], bi[:, :, column + 1 :, None, :]], axis=3
        )
        products_r, products_i = convolve_rows_complex(
            _flat(np.broadcast_to(factors_r[:, :, :, None, :], shape), limbs, width),
            _flat(np.broadcast_to(factors_i[:, :, :, None, :], shape), limbs, width),
            _flat(np.broadcast_to(source_r[:, :, None, :, :], shape), limbs, width),
            _flat(np.broadcast_to(source_i[:, :, None, :, :], shape), limbs, width),
            limbs,
        )
        flat_r = _flat(targets_r, limbs, width)
        flat_i = _flat(targets_i, limbs, width)
        updated_r, updated_i = cmd_sub_rows(
            [flat_r[i] for i in limb_list],
            [flat_i[i] for i in limb_list],
            [products_r[i] for i in limb_list],
            [products_i[i] for i in limb_list],
            limbs,
        )
        eliminated_r = np.stack(updated_r).reshape(shape)
        eliminated_i = np.stack(updated_i).reshape(shape)
        ar[:, :, column + 1 :, column:, :] = eliminated_r[:, :, :, :span, :]
        ai[:, :, column + 1 :, column:, :] = eliminated_i[:, :, :, :span, :]
        br[:, :, column + 1 :, :] = eliminated_r[:, :, :, span, :]
        bi[:, :, column + 1 :, :] = eliminated_i[:, :, :, span, :]

    x_r = np.zeros_like(br)
    x_i = np.zeros_like(bi)
    for row in range(n - 1, -1, -1):
        acc_r = np.ascontiguousarray(br[:, :, row, :])
        acc_i = np.ascontiguousarray(bi[:, :, row, :])
        for k in range(row + 1, n):
            product_r, product_i = convolve_rows_complex(
                np.ascontiguousarray(ar[:, :, row, k, :]),
                np.ascontiguousarray(ai[:, :, row, k, :]),
                np.ascontiguousarray(x_r[:, :, k, :]),
                np.ascontiguousarray(x_i[:, :, k, :]),
                limbs,
            )
            acc_r, acc_i = (
                np.stack(component)
                for component in cmd_sub_rows(
                    [acc_r[i] for i in limb_list],
                    [acc_i[i] for i in limb_list],
                    [product_r[i] for i in limb_list],
                    [product_i[i] for i in limb_list],
                    limbs,
                )
            )
        solved_r, solved_i = convolve_rows_complex(
            acc_r,
            acc_i,
            np.ascontiguousarray(inv_r[:, :, row, :]),
            np.ascontiguousarray(inv_i[:, :, row, :]),
            limbs,
        )
        x_r[:, :, row, :] = solved_r
        x_i[:, :, row, :] = solved_i
    return x_r, x_i


# --------------------------------------------------------------------- #
# dispatch helpers
# --------------------------------------------------------------------- #
def solve_packed(matrix, rhs, limbs: int, active: Sequence[int] | None = None):
    """Dispatch packed tensors to the real or complex batched solver.

    ``matrix``/``rhs`` are either plain limb tensors (real rings) or
    ``(real, imag)`` plane pairs (complex rings) — the shapes a resident
    :meth:`repro.core.EvalContext.newton_system` gathers; the result has the
    same form as ``rhs``.

    ``active`` optionally restricts the solve to a subset of batch-axis
    instances: only their systems are gathered and eliminated, the rest of
    the result stays exactly zero (shape-preserving, so callers can keep
    indexing by original instance).  Singular instances are reported by
    their *original* batch positions.  Because every elimination sweep is
    elementwise per instance, an active instance's solution is bit-identical
    whether or not the others solve alongside it.
    """
    if active is not None:
        indices = np.asarray(list(active), dtype=np.int64)
        if isinstance(matrix, tuple):
            sub_matrix = (matrix[0][:, indices], matrix[1][:, indices])
            sub_rhs = (rhs[0][:, indices], rhs[1][:, indices])
        else:
            sub_matrix = matrix[:, indices]
            sub_rhs = rhs[:, indices]
        try:
            solved = solve_packed(sub_matrix, sub_rhs, limbs)
        except SingularSystemError as error:
            original = [int(indices[i]) for i in getattr(error, "instances", [])]
            remapped = SingularSystemError(
                "zero pivot for batch instance(s) " + ", ".join(map(str, original))
            )
            remapped.instances = original
            raise remapped from error
        if isinstance(rhs, tuple):
            out = (np.zeros_like(rhs[0]), np.zeros_like(rhs[1]))
            out[0][:, indices] = solved[0]
            out[1][:, indices] = solved[1]
            return out
        out = np.zeros_like(rhs)
        out[:, indices] = solved
        return out
    tel = _TELEMETRY
    t0 = tel.enabled and _perf_counter_ns()
    if isinstance(matrix, tuple):
        solved = batch_lu_solve_tensor_complex(
            matrix[0], matrix[1], rhs[0], rhs[1], limbs
        )
        plane = matrix[0]
    else:
        solved = batch_lu_solve_tensor(matrix, rhs, limbs)
        plane = matrix
    if t0:
        end = _perf_counter_ns()
        _, m, n, _, width = plane.shape
        tel.record_span(
            "solve.packed", t0, end, batch=int(m), dimension=int(n), limbs=limbs
        )
        tel.count("solve.launches")
        predicted = _predicted_solve_ms(int(n), width - 1, int(m), limbs)
        if predicted is not None:
            tel.ledger("solve", (end - t0) / 1e6, predicted)
    return solved


def batch_lu_solve(
    matrices: Sequence[Sequence[Sequence[PowerSeries]]],
    rhss: Sequence[Sequence[PowerSeries]],
    active: Sequence[int] | None = None,
) -> list[list[PowerSeries] | None]:
    """Solve a batch of series systems given as nested :class:`PowerSeries`.

    Packs every instance's matrix and right-hand side into one limb tensor
    (ring inferred as in the tensorized evaluator, reals and complexes
    promoting losslessly), runs the batched elimination, and scatters the
    solutions back — for tensor-resident rings at double-double precision the
    per-instance results are bit-identical to scalar :func:`lu_solve`.  Rings
    the tensor cannot carry (exact fractions) fall back to the scalar oracle
    per instance.

    ``active`` optionally names the batch positions to solve: masked-out
    instances never reach the solver (their singular systems cannot raise)
    and come back as ``None`` in the result list, which keeps one entry per
    input instance.  Singular active instances are reported by their
    original batch positions.
    """
    if len(matrices) != len(rhss):
        raise ValueError(
            f"got {len(matrices)} matrices for {len(rhss)} right-hand sides"
        )
    if active is not None:
        indices = sorted({int(i) for i in active})
        if indices and (indices[0] < 0 or indices[-1] >= len(matrices)):
            raise ValueError(
                f"active instance indices must lie in [0, {len(matrices)}), "
                f"got [{indices[0]}, {indices[-1]}]"
            )
        try:
            solved = batch_lu_solve(
                [matrices[i] for i in indices], [rhss[i] for i in indices]
            )
        except SingularSystemError as error:
            original = [indices[i] for i in getattr(error, "instances", [])]
            remapped = SingularSystemError(
                "zero pivot for batch instance(s) " + ", ".join(map(str, original))
            )
            remapped.instances = original
            raise remapped from error
        results: list[list[PowerSeries] | None] = [None] * len(matrices)
        for position, solution in zip(indices, solved):
            results[position] = solution
        return results
    if not matrices:
        return []
    n = len(rhss[0])
    for matrix, rhs in zip(matrices, rhss):
        if len(rhs) != n or len(matrix) != n or any(len(row) != n for row in matrix):
            raise ValueError(
                "batch_lu_solve expects square systems of one dimension across the batch"
            )
    batch = len(matrices)
    flat_matrix = [series for matrix in matrices for row in matrix for series in row]
    flat_rhs = [series for rhs in rhss for series in rhs]
    ring = infer_ring(flat_matrix + flat_rhs)
    if ring is None:
        return [lu_solve(matrix, rhs) for matrix, rhs in zip(matrices, rhss)]
    kind, limbs = ring
    width = flat_rhs[0].degree + 1
    matrix_tensor = make_tensor(flat_matrix, kind=kind, limbs=limbs)
    rhs_tensor = make_tensor(flat_rhs, kind=kind, limbs=limbs)
    if kind in ("complex", "cmd"):
        x_r, x_i = batch_lu_solve_tensor_complex(
            matrix_tensor.real.reshape(limbs, batch, n, n, width),
            matrix_tensor.imag.reshape(limbs, batch, n, n, width),
            rhs_tensor.real.reshape(limbs, batch, n, width),
            rhs_tensor.imag.reshape(limbs, batch, n, width),
            limbs,
        )
        solved = ComplexSlotTensor(
            x_r.reshape(limbs, batch * n, width),
            x_i.reshape(limbs, batch * n, width),
            kind,
        )
    else:
        x = batch_lu_solve_tensor(
            matrix_tensor.data.reshape(limbs, batch, n, n, width),
            rhs_tensor.data.reshape(limbs, batch, n, width),
            limbs,
        )
        solved = SlotTensor(x.reshape(limbs, batch * n, width), kind)
    slots = solved.to_slots()
    return [slots[b * n : (b + 1) * n] for b in range(batch)]
