"""A small Taylor-series path tracker built on the evaluator.

Numerical continuation follows a solution path ``x(t)`` of a family of
polynomial systems ``H(x, t) = 0`` from ``t = 0`` towards ``t = 1``.  The
power-series approach of the paper's motivating reference expands ``x`` as a
truncated series around the current parameter value, refines the expansion
with Newton's method on power series, advances the parameter by a step ``h``
by evaluating the series, and repeats.

The tracker is deliberately compact — fixed step size, residual-based
acceptance — because its purpose here is to exercise the evaluation and
differentiation machinery the way the real application does, not to compete
with PHCpack.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Sequence

from ..errors import ConvergenceError
from ..series.series import PowerSeries
from .newton import _ensure_context, newton_power_series, newton_power_series_batch
from .options import TrackOptions
from .systems import PolynomialSystem

__all__ = [
    "PathPoint",
    "PathTrackResult",
    "TaylorPathTracker",
    "align_path_points",
]

#: Relative slack within which an accumulated parameter value is considered
#: to have reached the end of the track.  Repeated ``t += h`` accumulation
#: drifts by a few ulps per step; without the snap, a track like step 0.1
#: over [0, 1] can stop just short of ``t_end`` and emit a spurious
#: micro-step at an off-grid parameter value.
_SNAP_EPSILON = 1.0e-12


@dataclass(frozen=True)
class PathPoint:
    """One accepted point of the tracked path."""

    t: float
    values: tuple
    residual: float
    newton_iterations: int


@dataclass
class PathTrackResult:
    """The accepted points and the final status of one tracked path."""

    points: list[PathPoint] = field(default_factory=list)
    success: bool = False

    @property
    def final_values(self):
        return self.points[-1].values if self.points else ()


class TaylorPathTracker:
    """Track one solution path of a parameterised polynomial system.

    Parameters
    ----------
    system_builder:
        Callable ``(t0, degree) -> PolynomialSystem`` returning the local
        system whose series variable is the offset ``s = t - t0``.
    options:
        A :class:`repro.homotopy.options.TrackOptions` carrying every knob
        (series degree, step size, Newton iteration bound and tolerance,
        execution mode).  Defaults to the tracker's historical settings.
    degree, step, newton_iterations, tolerance, mode:
        Deprecated per-keyword forms of the same knobs; they build an
        equivalent options object (bit-identical results) and warn.
    """

    def __init__(
        self,
        system_builder: Callable[[float, int], PolynomialSystem],
        degree: int | None = None,
        step: float | None = None,
        newton_iterations: int | None = None,
        tolerance: float | None = None,
        mode: str | None = None,
        options: TrackOptions | None = None,
    ):
        legacy = {
            key: value
            for key, value in {
                "degree": degree,
                "step": step,
                "newton_iterations": newton_iterations,
                "tolerance": tolerance,
                "mode": mode,
            }.items()
            if value is not None
        }
        if options is not None:
            if legacy:
                raise ValueError(
                    "pass either options= or the legacy keywords "
                    f"({', '.join(sorted(legacy))}), not both"
                )
        else:
            options = TrackOptions()
            if legacy:
                warnings.warn(
                    "the per-keyword tracker knobs (degree, step, "
                    "newton_iterations, tolerance, mode) are deprecated; pass "
                    "options=TrackOptions(...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                options = options.override(**legacy)
        self.system_builder = system_builder
        self.options = options

    # Historical read-only attribute names, derived from the options object.
    @property
    def degree(self) -> int:
        return self.options.degree

    @property
    def step(self) -> float:
        return self.options.step.initial

    @property
    def newton_iterations(self) -> int:
        return self.options.newton.max_iterations

    @property
    def tolerance(self) -> float:
        return self.options.newton.tolerance

    @property
    def mode(self) -> str | None:
        return self.options.mode

    def _build_system(self, t: float) -> PolynomialSystem:
        """The local system at ``t``, re-targeted at the tracker's mode."""
        return self.system_builder(t, self.degree).with_mode(self.mode)

    def _step_context(self, system: PolynomialSystem, context, batch: int):
        """The resident context for this step, carried over when possible.

        Consecutive local systems share their structure (only the parameter
        value moves), so the previous step's context — and with it the
        packed slot tensor — is rebound instead of rebuilt; the batch only
        changes when paths drop out, which forces one repack.  The reuse
        policy itself is the Newton drivers'
        (:func:`repro.homotopy.newton._ensure_context`), shared so the two
        layers cannot drift.
        """
        return _ensure_context(system, batch, context)

    # ------------------------------------------------------------------ #
    def track(self, start_values: Sequence, t_start: float = 0.0, t_end: float = 1.0) -> PathTrackResult:
        """Follow the path from ``t_start`` to ``t_end``.

        ``start_values`` are the solution coordinates at ``t_start`` (plain
        numbers in the coefficient ring of the systems produced by the
        builder).  One resident evaluation context is held across *all* path
        steps and Newton iterations, so the whole track packs its slot
        tensor once.
        """
        result = PathTrackResult()
        t = float(t_start)
        values = list(start_values)
        context = None
        guard = 0
        while True:
            guard += 1
            if guard > 10_000:
                raise ConvergenceError("path tracking exceeded the iteration guard")
            system = self._build_system(t)
            context = self._step_context(system, context, batch=1)
            initial = [PowerSeries.constant(v, self.degree) for v in values]
            newton = newton_power_series(
                system,
                initial,
                options=self.options.newton,
                context=context,
            )
            residual = newton.final_residual
            if not newton.converged and residual > self.tolerance:
                result.success = False
                return result
            result.points.append(
                PathPoint(
                    t=t,
                    values=tuple(series.constant_term() for series in newton.solution),
                    residual=residual,
                    newton_iterations=newton.iterations,
                )
            )
            if t >= t_end:
                result.success = True
                return result
            h = min(self.step, t_end - t)
            values = [series.evaluate(_promote_step(series, h)) for series in newton.solution]
            t = _advance(t, h, t_end)

    # ------------------------------------------------------------------ #
    def track_many(
        self,
        start_values: Sequence[Sequence],
        t_start: float = 0.0,
        t_end: float = 1.0,
    ) -> list[PathTrackResult]:
        """Follow several solution paths in lockstep, batching the Newton work.

        All paths share the fixed parameter grid, so at every accepted ``t``
        the local system is built **once** and the Newton refinements of all
        still-active paths run through one batched evaluation sweep
        (:func:`repro.homotopy.newton_power_series_batch`) against a
        resident context carried across path steps — the slot tensor of the
        whole batch is packed once for the entire track (plus once per
        batch shrink when a path drops out).  A path whose refinement misses
        the tolerance is marked failed and dropped; the remaining paths
        continue.  Returns one :class:`PathTrackResult` per start vector, in
        order.
        """
        results = [PathTrackResult() for _ in start_values]
        values = [list(start) for start in start_values]
        active = list(range(len(values)))
        t = float(t_start)
        context = None
        guard = 0
        while active:
            guard += 1
            if guard > 10_000:
                raise ConvergenceError("path tracking exceeded the iteration guard")
            system = self._build_system(t)
            context = self._step_context(system, context, batch=len(active))
            initials = [
                [PowerSeries.constant(v, self.degree) for v in values[index]]
                for index in active
            ]
            newtons = newton_power_series_batch(
                system,
                initials,
                options=self.options.newton,
                context=context,
            )
            at_end = t >= t_end
            h = 0.0 if at_end else min(self.step, t_end - t)
            survivors: list[int] = []
            for index, newton in zip(active, newtons):
                residual = newton.final_residual
                if not newton.converged and residual > self.tolerance:
                    results[index].success = False
                    continue
                results[index].points.append(
                    PathPoint(
                        t=t,
                        values=tuple(series.constant_term() for series in newton.solution),
                        residual=residual,
                        newton_iterations=newton.iterations,
                    )
                )
                if at_end:
                    results[index].success = True
                    continue
                values[index] = [
                    series.evaluate(_promote_step(series, h)) for series in newton.solution
                ]
                survivors.append(index)
            if at_end:
                break
            active = survivors
            t = _advance(t, h, t_end)
        return results


def align_path_points(
    results: Sequence[PathTrackResult], fill=None
) -> list[list[PathPoint | None]]:
    """Align per-path :class:`PathPoint` histories into one rectangular table.

    ``results`` is the input-ordered list a many-path run returns
    (:meth:`TaylorPathTracker.track_many` or the adaptive scheduler's
    report).  Paths finish at different step counts — failed paths stop
    early, adaptive paths reject and re-step — so the histories are ragged;
    this pads every column to the longest history with ``fill``.  Row ``k``
    of the returned table holds the ``k``-th accepted point of every path
    (still in input order), the shape plotting and tail-latency analyses
    want.
    """
    longest = max((len(result.points) for result in results), default=0)
    return [
        [
            result.points[k] if k < len(result.points) else fill
            for result in results
        ]
        for k in range(longest)
    ]


def _advance(t: float, h: float, t_end: float) -> float:
    """Advance the parameter by ``h``, snapping onto ``t_end`` when reached."""
    t = t + h
    if abs(t_end - t) <= _SNAP_EPSILON * max(1.0, abs(t_end)):
        return t_end
    return t


def _promote_step(series: PowerSeries, h: float):
    """Promote the step size into the coefficient ring of ``series``.

    The promotion goes through the ring's own conversion so exact rings stay
    exact: ``zero + h`` for a :class:`~fractions.Fraction` coefficient would
    demote the whole evaluation to float, so ``h`` is lifted to an (exact)
    ``Fraction`` first.  Floating-point rings (float, complex, multidouble)
    absorb the plain double unchanged.
    """
    zero = series.coefficients[0] * 0
    if isinstance(zero, Fraction):
        return zero + Fraction(h)
    return zero + h
