"""Linear algebra over truncated power series.

Newton's method on power series solves, at every step, a linear system whose
matrix entries and right-hand side are truncated power series.  Gaussian
elimination works verbatim in this ring as long as every pivot has an
invertible (non-zero) constant term — division of series is multiplication by
the series inverse (:meth:`repro.series.PowerSeries.inverse`).

The pivot choice maximises the magnitude of the constant term (partial
pivoting), which keeps the elimination stable for floating-point coefficient
rings and is a no-op for exact rings.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import SingularSystemError
from ..series.series import PowerSeries

__all__ = ["lu_solve", "matrix_vector_product", "residual_norm"]


def _constant_magnitude(series: PowerSeries) -> float:
    value = series.coefficients[0]
    if hasattr(value, "abs"):
        return float(value.abs().to_float())
    if hasattr(value, "to_float"):
        return abs(value.to_float())
    return abs(complex(value)) if isinstance(value, complex) else abs(float(value))


def lu_solve(matrix: Sequence[Sequence[PowerSeries]], rhs: Sequence[PowerSeries]) -> list[PowerSeries]:
    """Solve ``matrix * x = rhs`` by Gaussian elimination over the series ring.

    Raises :class:`repro.errors.SingularSystemError` when a pivot's constant
    term vanishes (the linearised system is singular at ``t = 0``); a
    non-square input is a usage error and raises :class:`ValueError`.
    """
    n = len(rhs)
    if any(len(row) != n for row in matrix) or len(matrix) != n:
        raise ValueError("lu_solve expects a square system")
    a = [list(row) for row in matrix]
    b = list(rhs)
    # Per-column pivot inverses from elimination, reused by back substitution
    # (each series inversion costs a full recursion over the coefficients).
    inverses: list[PowerSeries | None] = [None] * n

    for column in range(n):
        # Partial pivoting on the constant coefficients.
        pivot_row = max(range(column, n), key=lambda r: _constant_magnitude(a[r][column]))
        if _constant_magnitude(a[pivot_row][column]) == 0.0:
            raise SingularSystemError(f"zero pivot in column {column}")
        if pivot_row != column:
            a[column], a[pivot_row] = a[pivot_row], a[column]
            b[column], b[pivot_row] = b[pivot_row], b[column]
        pivot_inverse = a[column][column].inverse()
        inverses[column] = pivot_inverse
        for row in range(column + 1, n):
            factor = a[row][column] * pivot_inverse
            for k in range(column, n):
                a[row][k] = a[row][k] - factor * a[column][k]
            b[row] = b[row] - factor * b[column]

    # Back substitution.
    x: list[PowerSeries | None] = [None] * n
    for row in range(n - 1, -1, -1):
        accumulator = b[row]
        for k in range(row + 1, n):
            accumulator = accumulator - a[row][k] * x[k]
        x[row] = accumulator * inverses[row]
    return list(x)  # type: ignore[arg-type]


def matrix_vector_product(
    matrix: Sequence[Sequence[PowerSeries]], vector: Sequence[PowerSeries]
) -> list[PowerSeries]:
    """``matrix * vector`` over the series ring (used to verify solves)."""
    out = []
    for row in matrix:
        accumulator = row[0] * vector[0]
        for a, v in zip(row[1:], vector[1:]):
            accumulator = accumulator + a * v
        out.append(accumulator)
    return out


def residual_norm(series_vector: Sequence[PowerSeries]) -> float:
    """Largest coefficient magnitude across a vector of series (as a double)."""
    worst = 0.0
    for series in series_vector:
        zero = PowerSeries.zero(series.degree, like=series.coefficients[0])
        worst = max(worst, series.max_abs_error(zero))
    return worst
