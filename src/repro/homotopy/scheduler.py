"""The adaptive masked many-path scheduler with precision-escalation retries.

:meth:`repro.homotopy.TaylorPathTracker.track_many` steps every path across
one fixed parameter grid in lockstep: a single hard path shrinks the batch
(one repack per dropout) or fails outright, and there is no way back once a
refinement misses the tolerance.  The production workload of the paper —
thousands to millions of independent solution paths — needs the opposite
shape, and this module provides it:

* **per-path adaptive steps** — every path carries its own step size ``h``,
  grown when Newton converges fast (few iterations) and shrunk when a trial
  point is rejected, under the :class:`repro.homotopy.options.StepControl`
  policy.  ``grow = 1.0`` disables growth and makes healthy paths reproduce
  the lockstep grid bit for bit;
* **masked residency** — the whole fleet stays packed in one resident
  :class:`repro.core.EvalContext` for the entire track.  Paths that converge,
  fail, or merely sit out a Newton iteration are masked out of the sweeps
  (:meth:`repro.core.EvalContext.set_active`) and of the batched linear solve
  (the ``active`` mask of :func:`repro.homotopy.batch_linsolve.solve_packed`)
  instead of being repacked away — the surviving batch packs its slot tensor
  **once**, which the test suite asserts.  Because every tensor row operation
  is elementwise per instance, masking cannot change any surviving path's
  bits;
* **a fleet of local systems in one tensor** — after the first rejection the
  paths sit at *different* parameter values, so each instance needs its own
  local system.  :meth:`repro.core.EvalContext.rebind_fleet` rewrites each
  instance's constant/coefficient rows in place (grouped by shared system, so
  synchronized paths cost one write per series), keeping the tensor and the
  compiled program resident;
* **divergence, singularity and path-crossing detection** — residuals or
  solution values beyond :attr:`RetryPolicy.divergence_threshold` fail a path
  immediately, singular Newton systems drop only the offending instances from
  the batched elimination (the rest of the fleet solves on), and optionally
  converged paths that land on the same endpoint are flagged as crossings;
* **precision escalation** — every failed path is collected and re-run as a
  fresh fleet at the next limb count of :attr:`RetryPolicy.precision_ladder`,
  with the system family and start values lifted exactly
  (:func:`repro.homotopy.systems.lift_value`).  Lifted systems share the
  original's polynomial structure, so they hit the same memoised schedules
  and compiled tensor programs — escalation restages nothing.

Every path's journey is recorded in a :class:`PathStatus` (steps, rejections,
retries, final precision, failure reason) and the fleet's in a
:class:`TrackManyReport`; the front door is :func:`track_paths` (exported as
``repro.track_paths``), configured by one frozen
:class:`repro.homotopy.options.TrackOptions` object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter_ns as _perf_counter_ns
from typing import Callable, Sequence

from ..core.tensor import infer_ring
from ..errors import ConvergenceError, SingularSystemError, StagingError
from ..md.complexmd import ComplexMD
from ..md.multidouble import MultiDouble
from ..obs import get_telemetry
from ..series.series import PowerSeries
from .linsolve import lu_solve, residual_norm
from .batch_linsolve import solve_packed
from .options import TrackOptions
from .pathtrack import PathPoint, PathTrackResult, _advance, _promote_step
from .systems import PolynomialSystem, lift_value

__all__ = ["PathStatus", "TrackManyReport", "PathScheduler", "track_paths"]

#: Process-wide telemetry registry; ``enabled`` is a plain attribute so the
#: disabled hot path costs exactly one attribute check per call site.
_TELEMETRY = get_telemetry()


@dataclass(frozen=True)
class PathStatus:
    """The per-path diagnostics record of one scheduled track.

    ``reason`` is ``None`` for converged paths and otherwise one of
    ``"newton"`` (the refinement missed the tolerance with no accepted point
    to retreat to), ``"diverged"``, ``"singular"``, ``"step-underflow"``,
    ``"rejection-budget"``, or ``"crossing"``.
    """

    index: int
    converged: bool
    reason: str | None
    steps: int
    rejections: int
    retries: int
    limbs: int | None
    residual: float

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "converged": self.converged,
            "reason": self.reason,
            "steps": self.steps,
            "rejections": self.rejections,
            "retries": self.retries,
            "limbs": self.limbs,
            "residual": self.residual,
        }


@dataclass
class TrackManyReport:
    """Everything one :func:`track_paths` call produced, in input order.

    ``results[i]`` and ``statuses[i]`` always describe the ``i``-th start
    vector; ``fleets`` records one entry per executed fleet (the base run
    plus one per used precision-ladder rung) with its limb count, path count,
    pack count and round count.
    """

    results: list[PathTrackResult] = field(default_factory=list)
    statuses: list[PathStatus] = field(default_factory=list)
    fleets: list[dict] = field(default_factory=list)
    #: One entry per worker shard when the run was process-sharded
    #: (:mod:`repro.parallel.shard`); empty for inline runs.
    shards: list[dict] = field(default_factory=list)
    #: :meth:`repro.core.ScheduleCache.stats` of the cache the fleets used —
    #: hits/misses/evictions/build-waits as of the end of the run.  Sharded
    #: runs aggregate the workers' counts (plus one sub-dict per shard).
    cache: dict = field(default_factory=dict)

    @property
    def n_paths(self) -> int:
        return len(self.results)

    @property
    def n_converged(self) -> int:
        return sum(1 for status in self.statuses if status.converged)

    @property
    def failed_indices(self) -> list[int]:
        return [status.index for status in self.statuses if not status.converged]

    @property
    def escalated_indices(self) -> list[int]:
        """Paths that needed at least one precision-escalation retry."""
        return [status.index for status in self.statuses if status.retries > 0]

    @property
    def total_packs(self) -> int:
        """Slot-tensor packs across every fleet (base fleet packs exactly once)."""
        return sum(fleet["packs"] for fleet in self.fleets)

    @property
    def total_retries(self) -> int:
        return sum(status.retries for status in self.statuses)

    def summary(self) -> dict:
        """A JSON-friendly digest (the shape the benchmark emits)."""
        return {
            "paths": self.n_paths,
            "converged": self.n_converged,
            "failed": self.failed_indices,
            "escalated": self.escalated_indices,
            "retries": self.total_retries,
            "packs": self.total_packs,
            "fleets": list(self.fleets),
            "shards": list(self.shards),
            "cache": dict(self.cache),
            "steps": [status.steps for status in self.statuses],
            "rejections": [status.rejections for status in self.statuses],
        }


class _PathState:
    """Mutable per-path bookkeeping of one fleet (internal)."""

    __slots__ = (
        "index",
        "start_values",
        "values",
        "t_trial",
        "t_accepted",
        "series",
        "h",
        "points",
        "rejections",
        "retries",
        "limbs",
        "status",
        "reason",
        "residual",
    )

    def __init__(self, index: int, start_values: Sequence, h: float, limbs: int | None):
        self.index = index
        self.start_values = list(start_values)
        self.values = list(start_values)
        self.t_trial = 0.0
        self.t_accepted: float | None = None
        self.series: list[PowerSeries] | None = None
        self.h = h
        self.points: list[PathPoint] = []
        self.rejections = 0
        self.retries = 0
        self.limbs = limbs
        self.status = "running"
        self.reason: str | None = None
        self.residual = math.inf

    def fail(self, reason: str) -> None:
        self.status = "failed"
        self.reason = reason

    def relaunch(self, start_values: Sequence, h: float, limbs: int | None) -> None:
        """Reset for a fresh attempt at the next precision rung."""
        self.start_values = list(start_values)
        self.values = list(start_values)
        self.t_accepted = None
        self.series = None
        self.h = h
        self.points = []
        self.rejections = 0
        self.retries += 1
        self.limbs = limbs
        self.status = "running"
        self.reason = None
        self.residual = math.inf


def _magnitude(value) -> float:
    """A plain-double magnitude of any coefficient-ring value."""
    if isinstance(value, ComplexMD):
        return abs(value.to_complex())
    if isinstance(value, complex):
        return abs(value)
    return abs(float(value))


def _endpoint(state: _PathState) -> tuple[complex, ...]:
    values = state.points[-1].values if state.points else ()
    out = []
    for value in values:
        if isinstance(value, ComplexMD):
            out.append(value.to_complex())
        elif isinstance(value, MultiDouble):
            out.append(complex(value.to_float()))
        else:
            out.append(complex(value))
    return tuple(out)


class PathScheduler:
    """Track many solution paths adaptively through one resident fleet.

    Parameters
    ----------
    system_builder:
        Callable ``(t0, degree) -> PolynomialSystem`` returning the local
        system whose series variable is the offset ``s = t - t0`` — the same
        contract as :class:`repro.homotopy.TaylorPathTracker`.
    options:
        A :class:`repro.homotopy.options.TrackOptions`; keyword overrides
        are layered on top via :meth:`TrackOptions.make`.
    """

    #: Hard bound on scheduler rounds per fleet, mirroring the tracker's guard.
    _ROUND_GUARD = 10_000

    def __init__(
        self,
        system_builder: Callable[[float, int], PolynomialSystem],
        options: TrackOptions | None = None,
        **overrides,
    ):
        self.system_builder = system_builder
        self.options = TrackOptions.make(options, **overrides)

    # ------------------------------------------------------------------ #
    def track(
        self,
        start_values: Sequence[Sequence],
        t_start: float = 0.0,
        t_end: float = 1.0,
        context_buffer=None,
    ) -> TrackManyReport:
        """Track one path per start vector and aggregate the fleet report.

        The base fleet runs every path at the family's own precision; paths
        that fail are collected and re-run — as one fresh fleet per rung —
        at each higher limb count of the options' precision ladder, with
        system and starts lifted exactly.  Successful paths are **never**
        re-run: their results come from the fleet that finished them, so a
        healthy path's output is independent of its neighbours' failures.

        ``context_buffer`` optionally backs the *base* fleet's packed limb
        tensor with a caller-provided writable buffer — the sharded runner
        passes each worker its shared-memory segment here, so the shard
        packs exactly once, straight into shared memory.  Retry-ladder
        fleets run at higher limb counts than the buffer was sized for and
        always allocate locally.
        """
        tel = _TELEMETRY
        with tel.overridden(self.options.telemetry):
            t0 = tel.enabled and _perf_counter_ns()
            report = self._track(start_values, t_start, t_end, context_buffer)
            if t0:
                tel.record_span(
                    "scheduler.track",
                    t0,
                    _perf_counter_ns(),
                    paths=report.n_paths,
                    converged=report.n_converged,
                )
            return report

    def _track(
        self, start_values, t_start: float, t_end: float, context_buffer
    ) -> TrackManyReport:
        tel = _TELEMETRY
        report = TrackManyReport()
        starts = [list(start) for start in start_values]
        if not starts:
            return report
        options = self.options
        working_limbs = self._working_limbs(starts, t_start)
        states = [
            _PathState(i, start, options.step.initial, working_limbs)
            for i, start in enumerate(starts)
        ]
        self._run_fleet(
            self.system_builder, states, t_start, t_end, report, buffer=context_buffer
        )

        if working_limbs is not None:
            for limbs in options.retry.precision_ladder:
                if limbs <= working_limbs:
                    continue
                retry = [s for s in states if s.status == "failed"]
                if not retry:
                    break
                if tel.enabled:
                    tel.count("scheduler.retries", len(retry))
                    tel.count(f"scheduler.retries.limbs{limbs}", len(retry))
                builder = self._lifted_builder(limbs)
                for state in retry:
                    lifted = [lift_value(v, limbs) for v in state.start_values]
                    state.relaunch(lifted, options.step.initial, limbs)
                self._run_fleet(builder, retry, t_start, t_end, report)

        for state in states:
            result = PathTrackResult(
                points=state.points, success=state.status == "converged"
            )
            report.results.append(result)
            report.statuses.append(
                PathStatus(
                    index=state.index,
                    converged=state.status == "converged",
                    reason=state.reason,
                    steps=len(state.points),
                    rejections=state.rejections,
                    retries=state.retries,
                    limbs=state.limbs,
                    residual=state.residual,
                )
            )
        return report

    # ------------------------------------------------------------------ #
    def _working_limbs(self, starts, t_start: float) -> int | None:
        """The limb count of the family's own ring (None = exact/unsupported).

        Probes one local system plus the start values with the tensor
        backend's ring inference; ladder rungs at or below this count are
        skipped (they would not add precision).
        """
        probe = self.system_builder(t_start, self.options.degree)
        series = []
        for polynomial in probe.polynomials:
            series.append(polynomial.constant)
            series.extend(m.coefficient for m in polynomial.monomials)
        series.extend(PowerSeries([v]) for start in starts for v in start)
        ring = infer_ring(series)
        return None if ring is None else ring[1]

    def _lifted_builder(self, limbs: int):
        base = self.system_builder
        degree_cache: dict[float, PolynomialSystem] = {}

        def builder(t: float, degree: int) -> PolynomialSystem:
            key = (t, degree)
            if key not in degree_cache:
                degree_cache[key] = base(t, degree).with_precision(limbs)
            return degree_cache[key]

        return builder

    # ------------------------------------------------------------------ #
    def _run_fleet(
        self,
        builder,
        states: list[_PathState],
        t_start: float,
        t_end: float,
        report: TrackManyReport,
        buffer=None,
    ) -> None:
        """Run one fleet of paths to completion against one resident context."""
        options = self.options
        degree = options.degree
        batch = len(states)
        tel = _TELEMETRY
        f0 = tel.enabled and _perf_counter_ns()
        for state in states:
            state.t_trial = float(t_start)
        solutions: list[list[PowerSeries]] = [
            [PowerSeries.constant(v, degree) for v in state.values] for state in states
        ]
        context = None
        evaluators: list = [None] * batch
        rounds = 0
        while True:
            r0 = tel.enabled and _perf_counter_ns()
            running = [p for p, state in enumerate(states) if state.status == "running"]
            if not running:
                break
            rounds += 1
            if rounds > self._ROUND_GUARD:
                raise ConvergenceError("path scheduling exceeded the round guard")
            # One local system per distinct trial parameter value; paths in
            # sync share the object, so the fleet rebind groups their row
            # writes and the schedule cache sees one structure throughout.
            local: dict[float, PolynomialSystem] = {}
            for p in running:
                t = states[p].t_trial
                if t not in local:
                    local[t] = builder(t, degree).with_mode(options.mode)
            for p in running:
                evaluators[p] = local[states[p].t_trial].evaluator
                solutions[p] = [
                    PowerSeries.constant(v, degree) for v in states[p].values
                ]
            if context is None:
                context = local[states[running[0]].t_trial].make_context(
                    batch, buffer=buffer
                )
            context.rebind_fleet(list(evaluators))

            outcome = self._refine(context, running, solutions)
            for p in running:
                state = states[p]
                verdict = outcome[p]
                if verdict["singular"]:
                    state.residual = verdict["residual"]
                    state.fail("singular")
                    continue
                state.residual = verdict["residual"]
                missed = not verdict["converged"] and (
                    verdict["residual"] > options.newton.tolerance
                )
                if missed:
                    self._reject(state, solutions[p], t_end)
                else:
                    self._accept(state, solutions[p], verdict, t_end)
            if r0:
                tel.record_span(
                    "scheduler.round",
                    r0,
                    _perf_counter_ns(),
                    round=rounds,
                    active=len(running),
                    limbs=states[0].limbs,
                )
        if options.retry.detect_crossings:
            self._flag_crossings(states)
        context.set_active(None)
        report.cache = context.evaluator.cache.stats()
        report.fleets.append(
            {
                "limbs": states[0].limbs,
                "paths": batch,
                "packs": context.packs,
                "rounds": rounds,
                "resident": context.resident,
                "adopted": context.adopted,
            }
        )
        if f0:
            tel.record_span(
                "scheduler.fleet",
                f0,
                _perf_counter_ns(),
                limbs=states[0].limbs,
                paths=batch,
                rounds=rounds,
                packs=context.packs,
            )

    # ------------------------------------------------------------------ #
    def _refine(self, context, running: list[int], solutions) -> dict[int, dict]:
        """Newton-refine every running fleet position, masked and in place.

        Mirrors :func:`repro.homotopy.newton_power_series_batch` instance for
        instance — same sweeps, same batched solve, same convergence
        predicate — except that (a) only the pending instances sweep (the
        active mask), and (b) singular instances are *dropped* from the
        batched elimination and reported in their verdicts instead of
        raising, so one singular path cannot abort the fleet.
        """
        newton = self.options.newton
        verdicts = {
            p: {"converged": False, "residual": math.inf, "iterations": 0, "singular": False}
            for p in running
        }
        pending = list(running)
        for iteration in range(1, newton.max_iterations + 1):
            if not pending:
                break
            context.set_active(pending)
            context.update_inputs(solutions)
            if newton.solver == "batched" and not context.resident:
                raise StagingError(
                    "solver='batched' needs a tensor-resident context; this one "
                    "delegates (staged/fraction/non-vectorized mode) — use "
                    "solver='auto' or 'scalar'"
                )
            if newton.solver != "scalar" and context.resident:
                pending = self._resident_iteration(
                    context, pending, solutions, verdicts, iteration
                )
            else:
                pending = self._delegating_iteration(
                    context, pending, solutions, verdicts, iteration
                )
        if pending:
            # Out of iterations: one values-only sweep decides convergence,
            # exactly like the Newton drivers' final residual check.
            context.set_active(pending)
            context.update_inputs(solutions)
            if newton.solver != "scalar" and context.resident:
                context.run_packed()
                norms = context.residual_norms()
                for p in pending:
                    verdicts[p]["converged"] = float(norms[p]) <= newton.tolerance
            else:
                finals = context.run(values_only=True)
                for p in pending:
                    final = residual_norm([e.value for e in finals[p]])
                    verdicts[p]["converged"] = final <= newton.tolerance
        return verdicts

    def _resident_iteration(
        self, context, pending: list[int], solutions, verdicts, iteration: int
    ) -> list[int]:
        """One masked tensor-resident Newton iteration with singular-drop."""
        tolerance = self.options.newton.tolerance
        context.run_packed()
        norms = context.residual_norms()
        still: list[int] = []
        for p in pending:
            residual = float(norms[p])
            verdicts[p]["residual"] = residual
            verdicts[p]["iterations"] = iteration
            if residual <= tolerance:
                verdicts[p]["converged"] = True
            else:
                still.append(p)
        if not still:
            return []
        matrix, rhs = context.newton_system(still)
        limbs = context.ring[1]
        solve = list(range(len(still)))
        solution = None
        while solve:
            try:
                mask = None if len(solve) == len(still) else solve
                solution = solve_packed(matrix, rhs, limbs, active=mask)
                break
            except SingularSystemError as error:
                bad = set(getattr(error, "instances", []))
                if not bad:
                    raise
                for k in bad:
                    verdicts[still[k]]["singular"] = True
                solve = [k for k in solve if k not in bad]
        survivors: list[int] = []
        if solution is not None:
            corrections = context.unpack_vectors(solution)
            for k in solve:
                p = still[k]
                solutions[p] = [
                    current + delta
                    for current, delta in zip(solutions[p], corrections[k])
                ]
                survivors.append(p)
        return survivors

    def _delegating_iteration(
        self, context, pending: list[int], solutions, verdicts, iteration: int
    ) -> list[int]:
        """One masked per-call-path Newton iteration (staged/fraction/scalar)."""
        tolerance = self.options.newton.tolerance
        results = context.run()
        survivors: list[int] = []
        for p in pending:
            evaluations = results[p]
            residual_vector = [e.value for e in evaluations]
            residual = residual_norm(residual_vector)
            verdicts[p]["residual"] = residual
            verdicts[p]["iterations"] = iteration
            if residual <= tolerance:
                verdicts[p]["converged"] = True
                continue
            jacobian = [list(e.gradient) for e in evaluations]
            negated = [-value for value in residual_vector]
            try:
                correction = lu_solve(jacobian, negated)
            except SingularSystemError:
                verdicts[p]["singular"] = True
                continue
            solutions[p] = [
                current + delta for current, delta in zip(solutions[p], correction)
            ]
            survivors.append(p)
        return survivors

    # ------------------------------------------------------------------ #
    def _accept(self, state: _PathState, solution, verdict, t_end: float) -> None:
        """Record the accepted trial point and predict the next one."""
        step = self.options.step
        state.points.append(
            PathPoint(
                t=state.t_trial,
                values=tuple(series.constant_term() for series in solution),
                residual=verdict["residual"],
                newton_iterations=verdict["iterations"],
            )
        )
        state.series = solution
        state.t_accepted = state.t_trial
        if state.t_accepted >= t_end:
            state.status = "converged"
            return
        if verdict["iterations"] <= step.fast_iterations:
            state.h = min(state.h * step.grow, step.max)
        self._predict(state, t_end)

    def _reject(self, state: _PathState, solution, t_end: float) -> None:
        """Shrink the step and retreat to the last accepted point — or fail."""
        retry = self.options.retry
        step = self.options.step
        residual = state.residual
        diverged = not math.isfinite(residual) or residual > retry.divergence_threshold
        if not diverged:
            for series in solution:
                magnitude = _magnitude(series.constant_term())
                if not math.isfinite(magnitude) or magnitude > retry.divergence_threshold:
                    diverged = True
                    break
        if diverged:
            state.fail("diverged")
            return
        if state.t_accepted is None:
            # The refinement at the very start failed: there is no accepted
            # point to retreat to, so a smaller step cannot help.
            state.fail("newton")
            return
        state.rejections += 1
        if state.rejections > retry.max_rejections:
            state.fail("rejection-budget")
            return
        state.h = state.h * step.shrink
        if state.h < step.min:
            state.fail("step-underflow")
            return
        self._predict(state, t_end)

    def _predict(self, state: _PathState, t_end: float) -> None:
        """Evaluate the accepted series at the (clamped) step to seed the trial."""
        h = min(state.h, t_end - state.t_accepted)
        state.t_trial = _advance(state.t_accepted, h, t_end)
        state.values = [
            series.evaluate(_promote_step(series, h)) for series in state.series
        ]

    # ------------------------------------------------------------------ #
    def _flag_crossings(self, states: list[_PathState]) -> None:
        """Demote later-indexed duplicates among the converged endpoints.

        Two paths landing on the same endpoint (relative tolerance
        ``crossing_tolerance``) means at least one of them jumped tracks on
        the way; the later-indexed one is failed with reason ``"crossing"``
        so the precision ladder re-runs it at higher precision.
        """
        tolerance = self.options.retry.crossing_tolerance
        converged = [s for s in states if s.status == "converged"]
        endpoints = {id(s): _endpoint(s) for s in converged}
        for i, first in enumerate(converged):
            if first.status != "converged":
                continue
            a = endpoints[id(first)]
            for second in converged[i + 1 :]:
                if second.status != "converged":
                    continue
                b = endpoints[id(second)]
                if len(a) != len(b) or not a:
                    continue
                scale = max(1.0, max(abs(x) for x in a))
                if all(abs(x - y) <= tolerance * scale for x, y in zip(a, b)):
                    second.fail("crossing")


def track_paths(
    system_family: Callable[[float, int], PolynomialSystem],
    starts: Sequence[Sequence],
    options: TrackOptions | None = None,
    t_start: float = 0.0,
    t_end: float = 1.0,
    **overrides,
) -> TrackManyReport:
    """Track one solution path per start vector — the package's front door.

    ``system_family`` is the usual local-system builder ``(t0, degree) ->
    PolynomialSystem``; ``starts`` holds one start vector per path; the
    behaviour is configured entirely by ``options`` (a frozen
    :class:`repro.homotopy.options.TrackOptions`, defaulting to
    :data:`repro.homotopy.options.DEFAULT_TRACK_OPTIONS`) plus flat keyword
    ``overrides`` layered on top, e.g.::

        report = repro.track_paths(
            family, starts,
            step={"initial": 0.1, "grow": 1.5},
            precision_ladder=(4, 8),
        )

    With ``options.scheduler == "adaptive"`` (the default) the
    :class:`PathScheduler` runs the masked resident fleet with per-path
    steps and the precision-escalation retry ladder; ``"lockstep"`` runs the
    plain fixed-grid :meth:`repro.homotopy.TaylorPathTracker.track_many`
    (no retries) and wraps its results in the same report shape.
    """
    options = TrackOptions.make(options, **overrides)
    tel = _TELEMETRY
    with tel.overridden(options.telemetry):
        report = _dispatch_track(system_family, starts, options, t_start, t_end)
        if tel.enabled and tel.config.sink:
            tel.write_sink()
        return report


def _dispatch_track(
    system_family, starts, options: TrackOptions, t_start: float, t_end: float
) -> TrackManyReport:
    """Route a resolved options object to its tracking engine."""
    if options.scheduler == "lockstep":
        from .pathtrack import TaylorPathTracker

        tracker = TaylorPathTracker(system_family, options=options)
        results = tracker.track_many(starts, t_start, t_end)
        report = TrackManyReport(results=results)
        for index, result in enumerate(results):
            last = result.points[-1] if result.points else None
            report.statuses.append(
                PathStatus(
                    index=index,
                    converged=result.success,
                    reason=None if result.success else "newton",
                    steps=len(result.points),
                    rejections=0,
                    retries=0,
                    limbs=None,
                    residual=last.residual if last else math.inf,
                )
            )
        return report
    workers = options.shard.resolve_workers()
    if workers > 0 and len(starts) > 0:
        from ..parallel.shard import ShardedFleetRunner

        runner = ShardedFleetRunner(system_family, options)
        return runner.track(starts, t_start, t_end)
    return PathScheduler(system_family, options).track(starts, t_start, t_end)
