"""Pretty-print a saved telemetry artifact.

Usage::

    python -m repro.obs trace.json      # Chrome trace written by write_trace
    python -m repro.obs report.json     # report written by write_report
    python -m repro.obs --json trace.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .report import render_text, report_from_trace


def _load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if "traceEvents" in data:
        return report_from_trace(data)
    if {"counters", "spans", "ledger"} & set(data):
        return data
    raise SystemExit(f"{path}: not a repro.obs trace or report document")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Pretty-print a saved repro.obs trace or report.",
    )
    parser.add_argument("path", help="trace.json or report.json to render")
    parser.add_argument(
        "--json", action="store_true", help="emit the aggregated report as JSON"
    )
    args = parser.parse_args(argv)
    report = _load_report(args.path)
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(render_text(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
