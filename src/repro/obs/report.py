"""Summaries of telemetry snapshots: counters, gauges, span aggregates, and
the measured-vs-predicted ledger with ratio distributions per kernel class.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["build_report", "render_text", "report_from_trace"]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _span_rollup(events) -> Dict[str, dict]:
    rollup: Dict[str, dict] = {}
    for name, start_ns, end_ns, _pid, _tid, _attrs in events:
        ms = max(end_ns - start_ns, 0) / 1e6
        cell = rollup.get(name)
        if cell is None:
            rollup[name] = {"count": 1, "total_ms": ms, "max_ms": ms}
        else:
            cell["count"] += 1
            cell["total_ms"] += ms
            if ms > cell["max_ms"]:
                cell["max_ms"] = ms
    for cell in rollup.values():
        cell["mean_ms"] = cell["total_ms"] / cell["count"]
    return rollup


def _ledger_rollup(ledger) -> Dict[str, dict]:
    """Ratio distribution (measured / predicted) per kernel class."""
    grouped: Dict[str, dict] = {}
    for kernel, measured_ms, predicted_ms in ledger:
        cell = grouped.setdefault(
            kernel,
            {"count": 0, "measured_ms": 0.0, "predicted_ms": 0.0, "_ratios": []},
        )
        cell["count"] += 1
        cell["measured_ms"] += measured_ms
        cell["predicted_ms"] += predicted_ms
        if predicted_ms > 0:
            cell["_ratios"].append(measured_ms / predicted_ms)
    for cell in grouped.values():
        ratios = cell.pop("_ratios")
        if ratios:
            cell["ratio"] = {
                "mean": sum(ratios) / len(ratios),
                "median": _median(ratios),
                "min": min(ratios),
                "max": max(ratios),
                "count": len(ratios),
            }
        else:
            cell["ratio"] = None
    return grouped


def build_report(snapshot: dict) -> dict:
    """Aggregate a telemetry snapshot into a JSON-serialisable summary."""
    gauges = {}
    for name, cell in snapshot.get("gauges", {}).items():
        last, low, high, total, count = cell
        gauges[name] = {
            "last": last,
            "min": low,
            "max": high,
            "mean": total / count if count else 0.0,
            "count": count,
        }
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": gauges,
        "spans": _span_rollup(snapshot.get("events", [])),
        "ledger": _ledger_rollup(snapshot.get("ledger", [])),
    }


def report_from_trace(trace: dict) -> dict:
    """Rebuild a report from a saved Chrome trace document."""
    other = trace.get("otherData", {})
    events = [
        (
            entry["name"],
            0,
            int(entry.get("dur", 0.0) * 1000),
            entry.get("pid", 0),
            entry.get("tid", 0),
            entry.get("args"),
        )
        for entry in trace.get("traceEvents", [])
        if entry.get("ph") == "X"
    ]
    snapshot = {
        "events": events,
        "counters": other.get("counters", {}),
        "gauges": other.get("gauges", {}),
        "ledger": [tuple(row) for row in other.get("ledger", [])],
    }
    return build_report(snapshot)


def render_text(report: dict) -> str:
    """Human-readable rendering of :func:`build_report` output."""
    lines: List[str] = []

    spans = report.get("spans", {})
    if spans:
        lines.append("spans (aggregated)")
        lines.append(
            f"  {'name':<28} {'count':>7} {'total ms':>10} {'mean ms':>9} {'max ms':>9}"
        )
        for name in sorted(spans):
            cell = spans[name]
            lines.append(
                f"  {name:<28} {cell['count']:>7} {cell['total_ms']:>10.3f}"
                f" {cell['mean_ms']:>9.3f} {cell['max_ms']:>9.3f}"
            )

    counters = report.get("counters", {})
    if counters:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<40} {counters[name]:>12g}")

    gauges = report.get("gauges", {})
    if gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            cell = gauges[name]
            lines.append(
                f"  {name:<32} last={cell['last']:.4g} min={cell['min']:.4g}"
                f" max={cell['max']:.4g} mean={cell['mean']:.4g} n={cell['count']}"
            )

    ledger = report.get("ledger", {})
    if ledger:
        lines.append("measured vs predicted (per kernel class)")
        lines.append(
            f"  {'kernel':<14} {'n':>5} {'measured ms':>12} {'predicted ms':>13}"
            f" {'ratio med':>10} {'ratio mean':>11} {'min':>7} {'max':>8}"
        )
        for kernel in sorted(ledger):
            cell = ledger[kernel]
            ratio = cell.get("ratio")
            if ratio:
                tail = (
                    f" {ratio['median']:>10.3f} {ratio['mean']:>11.3f}"
                    f" {ratio['min']:>7.3f} {ratio['max']:>8.3f}"
                )
            else:
                tail = f" {'-':>10} {'-':>11} {'-':>7} {'-':>8}"
            lines.append(
                f"  {kernel:<14} {cell['count']:>5} {cell['measured_ms']:>12.3f}"
                f" {cell['predicted_ms']:>13.3f}{tail}"
            )

    if not lines:
        lines.append("telemetry: nothing recorded")
    return "\n".join(lines)
