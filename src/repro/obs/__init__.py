"""repro.obs — fleet telemetry: spans, counters, Chrome traces, and
measured-vs-predicted timing across the tracking stack.

Quick start::

    import repro.obs as obs

    obs.configure(enabled=True)          # or REPRO_TELEMETRY=1, or
    report = track_paths(family, starts, telemetry=True)
    tel = obs.get_telemetry()
    tel.write_trace("trace.json")        # open in ui.perfetto.dev
    print(obs.render_text(tel.report()))

Telemetry is off by default and instrumented call sites reduce to a single
attribute check when disabled.  Configuration layers: hard defaults →
JSON file named by ``REPRO_OBS_CONFIG`` → ``REPRO_TELEMETRY`` /
``REPRO_OBS_SAMPLE`` / ``REPRO_OBS_SINK`` environment variables →
per-call ``TrackOptions.telemetry`` overrides.
"""

from .config import DEFAULT_OBS_CONFIG, ObsConfig, layer_config, resolve_config
from .report import build_report, render_text, report_from_trace
from .telemetry import Telemetry, configure, get_telemetry
from .trace import chrome_trace, load_trace, merge_snapshots, write_trace

__all__ = [
    "ObsConfig",
    "DEFAULT_OBS_CONFIG",
    "Telemetry",
    "get_telemetry",
    "configure",
    "resolve_config",
    "layer_config",
    "chrome_trace",
    "write_trace",
    "load_trace",
    "merge_snapshots",
    "build_report",
    "render_text",
    "report_from_trace",
]
