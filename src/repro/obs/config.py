"""Layered configuration for the telemetry subsystem.

Telemetry is resolved the way PHCpack resolves its solver settings: a
hard-coded default layer, then a persistent configuration file, then
environment variables, then per-call overrides (``TrackOptions.telemetry``).
Each layer only touches the fields it names; everything else is inherited
from the layer below.

Layers, lowest priority first:

1. **defaults** — telemetry off, record every span, no sink.
2. **file** — JSON file named by ``REPRO_OBS_CONFIG`` (absent → skipped).
3. **environment** — ``REPRO_TELEMETRY`` (truthy/falsy), ``REPRO_OBS_SAMPLE``
   (float in ``(0, 1]``), ``REPRO_OBS_SINK`` (directory path).
4. **per-call** — ``TrackOptions.telemetry``: ``bool`` flips ``enabled``,
   a mapping or :class:`ObsConfig` overrides the named fields.

An :class:`ObsConfig` with ``None`` fields is a *partial* layer; a fully
resolved effective config never contains ``None`` for ``enabled``/``sample``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Mapping, Optional

__all__ = [
    "ObsConfig",
    "DEFAULT_OBS_CONFIG",
    "coerce_layer",
    "layer_config",
    "resolve_config",
]

_TRUTHY = {"1", "true", "yes", "on", "enabled"}
_FALSY = {"0", "false", "no", "off", "disabled", ""}


@dataclass(frozen=True)
class ObsConfig:
    """One layer of telemetry configuration.

    ``None`` means "inherit from the layer below".  ``sample`` is the
    fraction of spans recorded (counters and the ledger are never sampled);
    ``sink`` is a directory that receives ``trace.json`` / ``report.json``
    when a ``track_paths`` call finishes with telemetry enabled.
    """

    enabled: Optional[bool] = None
    sample: Optional[float] = None
    sink: Optional[str] = None

    def __post_init__(self) -> None:
        if self.enabled is not None and not isinstance(self.enabled, bool):
            object.__setattr__(self, "enabled", bool(self.enabled))
        if self.sample is not None:
            sample = float(self.sample)
            if not 0.0 < sample <= 1.0:
                raise ValueError(
                    f"telemetry sample must lie in (0, 1], got {sample!r}"
                )
            object.__setattr__(self, "sample", sample)
        if self.sink is not None:
            object.__setattr__(self, "sink", os.fspath(self.sink))

    def merged_onto(self, base: "ObsConfig") -> "ObsConfig":
        """Return ``base`` with this layer's non-``None`` fields applied."""
        return ObsConfig(
            enabled=base.enabled if self.enabled is None else self.enabled,
            sample=base.sample if self.sample is None else self.sample,
            sink=base.sink if self.sink is None else self.sink,
        )


DEFAULT_OBS_CONFIG = ObsConfig(enabled=False, sample=1.0, sink=None)


def coerce_layer(layer) -> Optional[ObsConfig]:
    """Normalise a per-call telemetry override into a partial ObsConfig.

    Accepts ``None`` (no override), a ``bool`` (flip ``enabled``), a mapping
    with a subset of the ObsConfig fields, or an ObsConfig.
    """
    if layer is None or isinstance(layer, ObsConfig):
        return layer
    if isinstance(layer, bool):
        return ObsConfig(enabled=layer)
    if isinstance(layer, Mapping):
        unknown = set(layer) - {"enabled", "sample", "sink"}
        if unknown:
            raise TypeError(
                f"unknown telemetry option(s): {sorted(unknown)}; "
                "expected 'enabled', 'sample', 'sink'"
            )
        return ObsConfig(**layer)
    raise TypeError(
        "telemetry must be None, a bool, a mapping, or an ObsConfig, "
        f"got {type(layer).__name__}"
    )


def layer_config(base: ObsConfig, layer) -> ObsConfig:
    """Apply a per-call override on top of a resolved config."""
    partial = coerce_layer(layer)
    if partial is None:
        return base
    return partial.merged_onto(base)


def _parse_bool(raw: str, *, source: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ValueError(f"cannot interpret {source}={raw!r} as a boolean")


def _file_layer(environ: Mapping[str, str]) -> ObsConfig:
    path = environ.get("REPRO_OBS_CONFIG")
    if not path:
        return ObsConfig()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return ObsConfig()
    if not isinstance(data, Mapping):
        return ObsConfig()
    known = {key: data[key] for key in ("enabled", "sample", "sink") if key in data}
    return ObsConfig(**known)


def _env_layer(environ: Mapping[str, str]) -> ObsConfig:
    enabled = sample = sink = None
    raw = environ.get("REPRO_TELEMETRY")
    if raw is not None:
        enabled = _parse_bool(raw, source="REPRO_TELEMETRY")
    raw = environ.get("REPRO_OBS_SAMPLE")
    if raw is not None:
        sample = float(raw)
    raw = environ.get("REPRO_OBS_SINK")
    if raw:
        sink = raw
    return ObsConfig(enabled=enabled, sample=sample, sink=sink)


def resolve_config(environ: Optional[Mapping[str, str]] = None) -> ObsConfig:
    """Resolve defaults → config file → environment into a full config."""
    environ = os.environ if environ is None else environ
    config = DEFAULT_OBS_CONFIG
    config = _file_layer(environ).merged_onto(config)
    config = _env_layer(environ).merged_onto(config)
    return replace(config)  # defensive copy with validation re-run
