"""Chrome ``chrome://tracing`` / Perfetto JSON export for telemetry snapshots.

The exported document is the standard Trace Event Format: a
``{"traceEvents": [...]}`` object whose entries are ``"X"`` (complete)
events with microsecond ``ts``/``dur`` plus ``"M"`` (metadata) events
naming each process lane.  Load the file at https://ui.perfetto.dev or in
``chrome://tracing``; every shard worker appears as its own pid lane on a
shared monotonic timeline.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

__all__ = ["chrome_trace", "write_trace", "load_trace", "merge_snapshots"]


def _span_origin_ns(events: Iterable[tuple]) -> int:
    starts = [event[1] for event in events]
    return min(starts) if starts else 0


def chrome_trace(snapshot: dict) -> dict:
    """Render a telemetry snapshot as a Chrome/Perfetto trace document."""
    events = snapshot.get("events", [])
    origin = _span_origin_ns(events)
    labels = dict(snapshot.get("labels", {}))
    pid = snapshot.get("pid")
    if pid and pid not in labels:
        labels[pid] = snapshot.get("label") or f"pid {pid}"

    trace_events = []
    seen_pids = []
    for name, start_ns, end_ns, event_pid, tid, attrs in events:
        if event_pid not in seen_pids:
            seen_pids.append(event_pid)
        entry = {
            "name": name,
            "ph": "X",
            "cat": "repro",
            "ts": (start_ns - origin) / 1000.0,
            "dur": max(end_ns - start_ns, 0) / 1000.0,
            "pid": event_pid,
            "tid": tid,
        }
        if attrs:
            entry["args"] = dict(attrs)
        trace_events.append(entry)

    for event_pid in seen_pids:
        label = labels.get(event_pid) or f"pid {event_pid}"
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": event_pid,
                "tid": 0,
                "args": {"name": label},
            }
        )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "origin_ns": origin,
            "counters": dict(snapshot.get("counters", {})),
            "gauges": {
                name: list(cell)
                for name, cell in snapshot.get("gauges", {}).items()
            },
            "ledger": [list(row) for row in snapshot.get("ledger", [])],
        },
    }


def write_trace(snapshot: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(snapshot), handle, indent=2)
        handle.write("\n")


def load_trace(path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def merge_snapshots(parent: dict, children: Iterable[Optional[dict]]) -> dict:
    """Merge worker snapshots into a parent's without touching a registry."""
    merged = {
        "version": parent.get("version", 1),
        "pid": parent.get("pid"),
        "label": parent.get("label"),
        "events": list(parent.get("events", [])),
        "counters": dict(parent.get("counters", {})),
        "gauges": {k: list(v) for k, v in parent.get("gauges", {}).items()},
        "ledger": [tuple(row) for row in parent.get("ledger", [])],
        "labels": dict(parent.get("labels", {})),
    }
    for child in children:
        if not child:
            continue
        merged["events"].extend(child.get("events", ()))
        for name, value in child.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, cell in child.get("gauges", {}).items():
            mine = merged["gauges"].get(name)
            if mine is None:
                merged["gauges"][name] = list(cell)
            else:
                mine[0] = cell[0]
                mine[1] = min(mine[1], cell[1])
                mine[2] = max(mine[2], cell[2])
                mine[3] += cell[3]
                mine[4] += cell[4]
        merged["ledger"].extend(tuple(row) for row in child.get("ledger", ()))
        merged["labels"].update(child.get("labels", {}))
        if child.get("label") and child.get("pid"):
            merged["labels"][child["pid"]] = child["label"]
    return merged
