"""Process-wide telemetry registry: spans, counters, gauges, timing ledger.

The registry is default-off and built so the *disabled* path costs a single
attribute check at every instrumented call site.  Hot code guards itself
with the idiom::

    tel = _TELEMETRY
    t0 = tel.enabled and time.perf_counter_ns()
    ... hot work ...
    if t0:
        tel.record_span("context.sweep", t0, time.perf_counter_ns(), batch=n)

so when telemetry is off the only work done is reading ``tel.enabled``
(a plain instance attribute — no property, no dict lookup through
``__getattr__``, no string formatting) and one falsy branch.  The
``span(...)`` context-manager form returns a cached null singleton when
disabled for the same reason.

Timestamps come from :func:`time.perf_counter_ns` (``CLOCK_MONOTONIC``),
which on Linux shares an epoch across processes, so spans recorded inside
spawned shard workers land on the same timeline as the parent's once the
worker snapshots are merged over the control-plane queue.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from .config import ObsConfig, layer_config, resolve_config

__all__ = ["Telemetry", "get_telemetry", "configure"]

# Snapshot wire format version (shipped over the shard control plane).
SNAPSHOT_VERSION = 1


class _NullSpan:
    """Inert context manager handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: records a monotonic event pair on exit."""

    __slots__ = ("_telemetry", "_name", "_attrs", "_start_ns")

    def __init__(self, telemetry: "Telemetry", name: str, attrs) -> None:
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._telemetry._record(
            self._name, self._start_ns, time.perf_counter_ns(), self._attrs
        )
        return False


class Telemetry:
    """Thread-safe event/counter/gauge/ledger registry for one process.

    Most users never construct one: :func:`get_telemetry` returns the
    process-wide singleton, configured from the layered defaults → config
    file → environment stack, with per-call overrides applied by
    ``track_paths`` via :meth:`overridden`.
    """

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self._lock = threading.Lock()
        self._events: List[tuple] = []
        self._counters: Dict[str, float] = {}
        # name -> [last, min, max, sum, count]
        self._gauges: Dict[str, List[float]] = {}
        # (kernel_class, measured_ms, predicted_ms)
        self._ledger: List[Tuple[str, float, float]] = []
        self._scope_attrs: Dict[str, object] = {}
        self._labels: Dict[int, str] = {}
        self._span_seq = 0
        self.label: Optional[str] = None
        self.enabled = False  # plain attribute: the one hot-path check
        self._sample_stride = 1
        self.config = DEFAULTS = resolve_config() if config is None else config
        self._apply(DEFAULTS)

    # -- configuration -------------------------------------------------

    def _apply(self, config: ObsConfig) -> None:
        self.config = config
        sample = 1.0 if config.sample is None else config.sample
        self._sample_stride = max(1, round(1.0 / sample))
        self.enabled = bool(config.enabled)

    def configure(self, layer=None, **overrides) -> ObsConfig:
        """Apply a persistent override layer (bool / mapping / ObsConfig)."""
        if overrides:
            merged = dict(overrides)
            if layer is not None:
                raise TypeError("pass either a layer or keyword overrides")
            layer = merged
        self._apply(layer_config(self.config, layer))
        return self.config

    def overridden(self, layer):
        """Context manager applying a per-call override, restored on exit."""
        return _override_scope(self, layer)

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs):
        """Context manager timing a region; inert singleton when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs or None)

    def record_span(self, name: str, start_ns: int, end_ns: int, **attrs) -> None:
        """Record an already-timed monotonic event pair."""
        if self.enabled:
            self._record(name, start_ns, end_ns, attrs or None)

    def _record(self, name, start_ns, end_ns, attrs) -> None:
        with self._lock:
            self._span_seq += 1
            if self._sample_stride > 1 and self._span_seq % self._sample_stride:
                return
            if self._scope_attrs:
                attrs = dict(self._scope_attrs, **(attrs or {}))
            self._events.append(
                (name, start_ns, end_ns, os.getpid(), threading.get_ident(), attrs)
            )

    @contextmanager
    def scope(self, **attrs):
        """Stamp ``attrs`` onto every span recorded inside the block.

        Used by the sharded runner to tag inline fallback re-runs with
        ``fallback=True`` without threading a flag through every layer.
        """
        with self._lock:
            previous = self._scope_attrs
            self._scope_attrs = dict(previous, **attrs)
        try:
            yield self
        finally:
            with self._lock:
                self._scope_attrs = previous

    # -- counters / gauges / ledger -------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        value = float(value)
        with self._lock:
            cell = self._gauges.get(name)
            if cell is None:
                self._gauges[name] = [value, value, value, value, 1]
            else:
                cell[0] = value
                if value < cell[1]:
                    cell[1] = value
                if value > cell[2]:
                    cell[2] = value
                cell[3] += value
                cell[4] += 1

    def ledger(self, kernel: str, measured_ms: float, predicted_ms: float) -> None:
        """Pair a measured launch with its ``TimingModel`` prediction."""
        if not self.enabled:
            return
        with self._lock:
            self._ledger.append((kernel, float(measured_ms), float(predicted_ms)))

    # -- snapshot / merge / reset ---------------------------------------

    def snapshot(self, reset: bool = False) -> dict:
        """Picklable copy of everything recorded so far (one process)."""
        with self._lock:
            snap = {
                "version": SNAPSHOT_VERSION,
                "pid": os.getpid(),
                "label": self.label,
                "events": list(self._events),
                "counters": dict(self._counters),
                "gauges": {name: list(cell) for name, cell in self._gauges.items()},
                "ledger": list(self._ledger),
                "labels": dict(self._labels),
            }
            if reset:
                self._events.clear()
                self._counters.clear()
                self._gauges.clear()
                self._ledger.clear()
        return snap

    def merge(self, snap: Optional[dict], **extra_attrs) -> None:
        """Fold another process's snapshot into this registry.

        ``extra_attrs`` are stamped onto every merged span (e.g.
        ``shard=3``) so worker lanes stay distinguishable in the trace.
        """
        if not snap:
            return
        events = snap.get("events", ())
        if extra_attrs:
            events = [
                (name, s, e, pid, tid, dict(attrs or {}, **extra_attrs))
                for (name, s, e, pid, tid, attrs) in events
            ]
        with self._lock:
            self._events.extend(events)
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, cell in snap.get("gauges", {}).items():
                mine = self._gauges.get(name)
                if mine is None:
                    self._gauges[name] = list(cell)
                else:
                    mine[0] = cell[0]
                    mine[1] = min(mine[1], cell[1])
                    mine[2] = max(mine[2], cell[2])
                    mine[3] += cell[3]
                    mine[4] += cell[4]
            self._ledger.extend(tuple(row) for row in snap.get("ledger", ()))
            self._labels.update(snap.get("labels", {}))
            label = snap.get("label")
            pid = snap.get("pid")
            if label and pid:
                self._labels[pid] = label

    def reset(self) -> None:
        """Drop all recorded data (configuration is untouched)."""
        with self._lock:
            self._events.clear()
            self._counters.clear()
            self._gauges.clear()
            self._ledger.clear()
            self._labels.clear()
            self._span_seq = 0

    # -- read access -----------------------------------------------------

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, dict]:
        with self._lock:
            return {
                name: {
                    "last": cell[0],
                    "min": cell[1],
                    "max": cell[2],
                    "mean": cell[3] / cell[4],
                    "count": cell[4],
                }
                for name, cell in self._gauges.items()
            }

    def spans(self) -> List[tuple]:
        with self._lock:
            return list(self._events)

    # -- export ----------------------------------------------------------

    def chrome_trace(self) -> dict:
        from .trace import chrome_trace

        return chrome_trace(self.snapshot())

    def report(self) -> dict:
        from .report import build_report

        return build_report(self.snapshot())

    def write_trace(self, path) -> None:
        from .trace import write_trace

        write_trace(self.snapshot(), path)

    def write_report(self, path) -> None:
        import json

        from .report import build_report

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(build_report(self.snapshot()), handle, indent=2)
            handle.write("\n")

    def write_sink(self, directory: Optional[str] = None) -> Optional[str]:
        """Write ``trace.json`` + ``report.json`` into the sink directory."""
        directory = directory or self.config.sink
        if not directory:
            return None
        os.makedirs(directory, exist_ok=True)
        self.write_trace(os.path.join(directory, "trace.json"))
        self.write_report(os.path.join(directory, "report.json"))
        return directory


@contextmanager
def _override_scope(telemetry: Telemetry, layer):
    if layer is None:
        yield telemetry
        return
    previous = telemetry.config
    telemetry._apply(layer_config(previous, layer))
    try:
        yield telemetry
    finally:
        telemetry._apply(previous)


_SINGLETON: Optional[Telemetry] = None
_SINGLETON_LOCK = threading.Lock()


def get_telemetry() -> Telemetry:
    """Return the process-wide registry (created lazily, mutated in place)."""
    global _SINGLETON
    if _SINGLETON is None:
        with _SINGLETON_LOCK:
            if _SINGLETON is None:
                _SINGLETON = Telemetry()
    return _SINGLETON


def configure(layer=None, **overrides) -> ObsConfig:
    """Configure the process-wide registry (see :meth:`Telemetry.configure`)."""
    return get_telemetry().configure(layer, **overrides)
