"""Legacy setuptools entry point.

The project is configured through ``pyproject.toml``; this shim exists so the
package can be installed in environments whose ``setuptools``/``pip`` are too
old (or offline) to perform PEP-517 editable installs, e.g.::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
